// Unit tests: the FIFO family of sim/fifo.hpp — the owning ring buffer
// (Fifo), the non-owning slab-lane view (FifoView), and the unbounded
// lazily allocated ring queue (RingQueue). Each gets ordering/wrap
// behaviour plus its always-on misuse guards (push-on-full, pop-on-empty,
// resize-nonempty abort in every build type, not just debug; see the
// header comment in sim/fifo.hpp).
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/fifo.hpp"

namespace ccastream::sim {
namespace {

TEST(Fifo, StartsEmpty) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.capacity(), 4u);
  EXPECT_TRUE(f.has_room());
}

TEST(Fifo, FifoOrder) {
  Fifo<int> f(4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.front(), 1);
  f.pop();
  EXPECT_EQ(f.front(), 2);
  f.pop();
  f.push(4);
  EXPECT_EQ(f.front(), 3);
  f.pop();
  EXPECT_EQ(f.front(), 4);
}

TEST(Fifo, FullReportsNoRoom) {
  Fifo<int> f(2);
  f.push(1);
  EXPECT_TRUE(f.has_room());
  f.push(2);
  EXPECT_FALSE(f.has_room());
  f.pop();
  EXPECT_TRUE(f.has_room());
}

TEST(Fifo, WrapsAroundManyTimes) {
  Fifo<int> f(3);
  for (int i = 0; i < 100; ++i) {
    f.push(i);
    EXPECT_EQ(f.front(), i);
    f.pop();
  }
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, InterleavedWrap) {
  Fifo<int> f(3);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    while (f.has_room()) f.push(next_in++);
    while (!f.empty()) {
      EXPECT_EQ(f.front(), next_out++);
      f.pop();
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Fifo, SetCapacityOnEmpty) {
  Fifo<int> f;
  EXPECT_EQ(f.capacity(), 0u);
  EXPECT_FALSE(f.has_room());
  f.set_capacity(5);
  EXPECT_EQ(f.capacity(), 5u);
  for (int i = 0; i < 5; ++i) f.push(i);
  EXPECT_FALSE(f.has_room());
}

TEST(Fifo, ClearEmptiesButKeepsCapacity) {
  Fifo<int> f(3);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.capacity(), 3u);
  f.push(9);
  EXPECT_EQ(f.front(), 9);
}

// The misuse guards are fatal_misuse-based rather than assert-based so
// that the contract — callers gate on has_room()/empty() — holds in
// Release builds too (NDEBUG compiles assert out). Each death test pins
// both the abort and the diagnostic naming the violated contract.
using FifoDeathTest = ::testing::Test;

TEST(FifoDeathTest, PushOnFullAborts) {
  Fifo<int> f(1);
  f.push(7);
  EXPECT_DEATH(f.push(8), "fatal misuse: Fifo::push on a full FIFO");
}

TEST(FifoDeathTest, PushOnZeroCapacityAborts) {
  Fifo<int> f;
  EXPECT_DEATH(f.push(1), "fatal misuse: Fifo::push on a full FIFO");
}

TEST(FifoDeathTest, PopOnEmptyAborts) {
  Fifo<int> f(2);
  EXPECT_DEATH(f.pop(), "fatal misuse: Fifo::pop on an empty FIFO");
}

TEST(FifoDeathTest, PopAfterDrainAborts) {
  Fifo<int> f(2);
  f.push(1);
  f.pop();
  EXPECT_DEATH(f.pop(), "fatal misuse: Fifo::pop on an empty FIFO");
}

TEST(FifoDeathTest, SetCapacityOnNonEmptyAborts) {
  Fifo<int> f(2);
  f.push(1);
  EXPECT_DEATH(f.set_capacity(8),
               "fatal misuse: Fifo::set_capacity on a non-empty FIFO");
}

// ---------------------------------------------------------------------------
// FifoView: the same ring semantics over caller-owned storage — the shape
// of one (cell, lane) slab slice in CellSoA. The view is three pointers, so
// state persists in the backing words across view copies, and the all-zero
// backing state must read as a valid empty FIFO (the slab's calloc pages
// are never explicitly initialised).

struct LaneBacking {
  int buf[4] = {0, 0, 0, 0};
  std::uint32_t head = 0;
  std::uint32_t size = 0;
  [[nodiscard]] FifoView<int> view() { return {buf, &head, &size, 4}; }
};

TEST(FifoView, ZeroedBackingIsEmpty) {
  LaneBacking lane;
  EXPECT_TRUE(lane.view().empty());
  EXPECT_EQ(lane.view().size(), 0u);
  EXPECT_EQ(lane.view().capacity(), 4u);
  EXPECT_TRUE(lane.view().has_room());
}

TEST(FifoView, FifoOrderAcrossViewCopies) {
  LaneBacking lane;
  lane.view().push(1);
  lane.view().push(2);
  // Every call constructs a fresh view: ordering lives in the backing
  // words, not the view object.
  EXPECT_EQ(lane.view().front(), 1);
  lane.view().pop();
  lane.view().push(3);
  EXPECT_EQ(lane.view().front(), 2);
  lane.view().pop();
  EXPECT_EQ(lane.view().front(), 3);
}

TEST(FifoView, WrapsAroundManyTimes) {
  LaneBacking lane;
  for (int i = 0; i < 100; ++i) {
    lane.view().push(i);
    EXPECT_EQ(lane.view().front(), i);
    lane.view().pop();
  }
  EXPECT_TRUE(lane.view().empty());
  EXPECT_EQ(lane.head, 100u % 4u);
}

TEST(FifoView, SizeWordIdentifiesTheLane) {
  LaneBacking a;
  LaneBacking b;
  EXPECT_EQ(a.view().size_word(), &a.size);
  EXPECT_NE(a.view().size_word(), b.view().size_word());
}

TEST(FifoViewDeathTest, PushOnFullAborts) {
  LaneBacking lane;
  for (int i = 0; i < 4; ++i) lane.view().push(i);
  EXPECT_FALSE(lane.view().has_room());
  EXPECT_DEATH(lane.view().push(5),
               "fatal misuse: FifoView::push on a full FIFO");
}

TEST(FifoViewDeathTest, PopOnEmptyAborts) {
  LaneBacking lane;
  EXPECT_DEATH(lane.view().pop(),
               "fatal misuse: FifoView::pop on an empty FIFO");
}

// ---------------------------------------------------------------------------
// RingQueue: the unbounded deque replacement for per-cell work queues. Key
// properties: an untouched queue allocates nothing, growth preserves FIFO
// order across the wrap, and pop-on-empty is the same always-on abort as
// the bounded variants.

TEST(RingQueue, StartsEmptyWithoutAllocating) {
  const RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RingQueue, FifoOrderThroughGrowth) {
  RingQueue<int> q;
  // Push enough to force several doublings (8 -> 16 -> 32 -> 64).
  for (int i = 0; i < 50; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, GrowthFromWrappedState) {
  RingQueue<int> q;
  int next_in = 0, next_out = 0;
  // Advance head so the ring is wrapped, then force a grow mid-wrap: the
  // copy-out must linearise the wrapped contents.
  for (int round = 0; round < 6; ++round) {
    q.push_back(next_in++);
    q.push_back(next_in++);
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  for (int i = 0; i < 40; ++i) q.push_back(next_in++);
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(RingQueueDeathTest, PopOnEmptyAborts) {
  RingQueue<int> q;
  EXPECT_DEATH(q.pop_front(),
               "fatal misuse: RingQueue::pop_front on an empty queue");
}

TEST(RingQueueDeathTest, PopAfterDrainAborts) {
  RingQueue<int> q;
  q.push_back(1);
  q.pop_front();
  EXPECT_DEATH(q.pop_front(),
               "fatal misuse: RingQueue::pop_front on an empty queue");
}

}  // namespace
}  // namespace ccastream::sim
