// The checked-build subsystem (runtime/check.hpp):
//   * CheckLevel parsing and the config > CCASTREAM_CHECK > off resolution
//     order (the same ladder every backend knob uses), including the
//     garbage-env fallback;
//   * a chip resolves its level at construction and exposes it, so two
//     chips in one process can run at different levels;
//   * transparency — a full-level run of a real workload is
//     cycle-for-cycle and counter-for-counter identical to an unchecked
//     run, on both engines (the checks observe, never steer);
//   * teeth — corrupting the invariants the sweeps guard (the fifo_msgs
//     cached counter, the activity-bitmap membership flag — both in the
//     chip's SoA block, reached via Chip::cell_state()) turns the next
//     cycle into a diagnosed abort instead of silent divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "test_util.hpp"

namespace ccastream {
namespace {

using rt::CheckLevel;
using test::ScopedEnv;

TEST(CheckLevelResolution, ParsesKnownLevels) {
  EXPECT_EQ(rt::parse_check_level("off"), CheckLevel::off);
  EXPECT_EQ(rt::parse_check_level("cheap"), CheckLevel::cheap);
  EXPECT_EQ(rt::parse_check_level("full"), CheckLevel::full);
  EXPECT_EQ(rt::parse_check_level(""), std::nullopt);
  EXPECT_EQ(rt::parse_check_level("FULL"), std::nullopt);
  EXPECT_EQ(rt::parse_check_level("2"), std::nullopt);
}

TEST(CheckLevelResolution, RoundTripsToString) {
  EXPECT_EQ(rt::parse_check_level(rt::to_string(CheckLevel::off)),
            CheckLevel::off);
  EXPECT_EQ(rt::parse_check_level(rt::to_string(CheckLevel::cheap)),
            CheckLevel::cheap);
  EXPECT_EQ(rt::parse_check_level(rt::to_string(CheckLevel::full)),
            CheckLevel::full);
}

// Same ladder as resolve_engine / resolve_dense_threshold: explicit config
// beats the environment, the environment beats the default, garbage in the
// environment degrades to the default (off) rather than erroring.
TEST(CheckLevelResolution, ConfigBeatsEnvBeatsDefault) {
  {
    const ScopedEnv env("CCASTREAM_CHECK", nullptr);
    EXPECT_EQ(rt::resolve_check_level({}), CheckLevel::off);
    EXPECT_EQ(rt::resolve_check_level(CheckLevel::full), CheckLevel::full);
  }
  {
    const ScopedEnv env("CCASTREAM_CHECK", "full");
    EXPECT_EQ(rt::resolve_check_level({}), CheckLevel::full);
    // Explicit config always wins over the environment.
    EXPECT_EQ(rt::resolve_check_level(CheckLevel::cheap), CheckLevel::cheap);
    EXPECT_EQ(rt::resolve_check_level(CheckLevel::off), CheckLevel::off);
  }
  {
    const ScopedEnv env("CCASTREAM_CHECK", "cheap");
    EXPECT_EQ(rt::resolve_check_level({}), CheckLevel::cheap);
  }
  {
    const ScopedEnv env("CCASTREAM_CHECK", "paranoid");
    EXPECT_EQ(rt::resolve_check_level({}), CheckLevel::off);
  }
}

TEST(CheckLevelResolution, ChipResolvesAtConstruction) {
  {
    const ScopedEnv env("CCASTREAM_CHECK", nullptr);
    const sim::Chip chip(test::small_chip_config(4));
    EXPECT_EQ(chip.check_level(), CheckLevel::off);
  }
  {
    const ScopedEnv env("CCASTREAM_CHECK", "full");
    const sim::Chip from_env(test::small_chip_config(4));
    EXPECT_EQ(from_env.check_level(), CheckLevel::full);

    auto cfg = test::small_chip_config(4);
    cfg.check_level = CheckLevel::cheap;
    const sim::Chip from_config(cfg);
    EXPECT_EQ(from_config.check_level(), CheckLevel::cheap);
  }
}

// ---------------------------------------------------------------------------
// Workload plumbing shared by the behavioural tests: the self-spinning
// handler from the engine suites, which holds cells live for a chosen
// number of rounds and exercises routing, IO, staging, and the active set.

class Blob final : public rt::ArenaObject {
 public:
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
};

rt::HandlerId install_spin(sim::Chip& chip) {
  return chip.handlers().register_handler(
      "spin", [](rt::Context& ctx, const rt::Action& a) {
        ctx.charge(3);
        if (a.args[0] > 0) {
          ctx.propagate(rt::make_action(
              a.handler, rt::GlobalAddress::unpack(a.args[1]), a.args[0] - 1,
              a.args[1]));
        }
      });
}

void seed_spinner(sim::Chip& chip, rt::HandlerId spin, std::uint32_t cc,
                  rt::Word rounds) {
  const auto tgt = *chip.host_allocate(cc, std::make_unique<Blob>());
  chip.inject_local(rt::make_action(spin, tgt, rounds, tgt.pack()));
}

/// Runs the reference workload at `level` on `engine` and returns the final
/// counters. The workload lights a diagonal of cells with staggered
/// lifetimes so the run exercises activation, deactivation, and (on the
/// active engine) the membership structures the full sweep audits.
sim::ChipStats run_workload(CheckLevel level, sim::EngineKind engine) {
  auto cfg = test::small_chip_config(8);
  cfg.check_level = level;
  cfg.engine = engine;
  cfg.threads = 1;
  sim::Chip chip(cfg);
  const auto spin = install_spin(chip);
  for (std::uint32_t i = 0; i < 8; ++i) {
    seed_spinner(chip, spin, i * 8 + i, 4 + i);
  }
  chip.run_until_quiescent();
  return chip.stats();
}

// The checks must be pure observers: a fully-checked run is identical to an
// unchecked run in every counter, on both engines. (This is also the test
// that actually *executes* the full barrier sweep on a live workload.)
TEST(CheckedRun, FullLevelIsTransparent) {
  for (const auto engine : {sim::EngineKind::kActive, sim::EngineKind::kScan}) {
    const auto unchecked = run_workload(CheckLevel::off, engine);
    const auto checked = run_workload(CheckLevel::full, engine);
    EXPECT_EQ(checked.cycles, unchecked.cycles);
    EXPECT_EQ(checked.actions_created, unchecked.actions_created);
    EXPECT_EQ(checked.actions_executed, unchecked.actions_executed);
    EXPECT_EQ(checked.instructions, unchecked.instructions);
    EXPECT_EQ(checked.messages_staged, unchecked.messages_staged);
    EXPECT_EQ(checked.hops, unchecked.hops);
    EXPECT_EQ(checked.deliveries, unchecked.deliveries);
    EXPECT_EQ(checked.io_injections, unchecked.io_injections);
    EXPECT_EQ(checked.allocations, unchecked.allocations);
    EXPECT_EQ(checked.faults, unchecked.faults);
  }
}

// ---------------------------------------------------------------------------
// Teeth: seed a corruption the sweeps are specified to catch and pin the
// diagnosed abort. Chips are serial single-partition so the death-test
// child re-executes deterministically without worker threads.

sim::ChipConfig checked_serial_config(CheckLevel level) {
  auto cfg = test::small_chip_config(4);
  cfg.check_level = level;
  cfg.threads = 1;
  return cfg;
}

using CheckDeathTest = ::testing::Test;

// A fifo_msgs counter that drifts from real FIFO occupancy is exactly the
// corruption the cached-counter audit exists for: the full sweep catches
// it at the next cycle barrier even when no helper touches the cell again.
TEST(CheckDeathTest, CorruptedFifoCounterDiesAtBarrier) {
  sim::Chip chip(checked_serial_config(CheckLevel::full));
  chip.step();
  chip.cell_state().fifo_msgs_ref(5) += 1;
  EXPECT_DEATH(chip.step(), "CCA_CHECK failed: c.fifo_msgs");
}

// At level cheap the same drift is caught earlier — by the mutation helper
// the next time traffic touches the cell (here: the IO delivery path).
TEST(CheckDeathTest, CorruptedFifoCounterDiesInMutationHelper) {
  sim::Chip chip(checked_serial_config(CheckLevel::cheap));
  const auto spin = install_spin(chip);
  chip.cell_state().fifo_msgs_ref(5) += 1;
  seed_spinner(chip, spin, 5, 1);
  EXPECT_DEATH(chip.run_until_quiescent(), "CCA_CHECK failed");
}

// Membership corruption: a bitmap flag claiming an idle cell is live
// breaks is_active == has_work(), the invariant every phase sweep of the
// active engine trusts when it skips cells.
TEST(CheckDeathTest, CorruptedActiveFlagDiesAtBarrier) {
  auto cfg = checked_serial_config(CheckLevel::full);
  cfg.engine = sim::EngineKind::kActive;
  sim::Chip chip(cfg);
  chip.step();
  chip.cell_state().corrupt_active_flag(7, true);
  EXPECT_DEATH(chip.step(), "CCA_CHECK failed");
}

// Level off must not die: the same corruptions are (deliberately) ignored,
// which is what keeps the default path zero-overhead. The counter is
// repaired before any helper would trip the debug assert in idle().
TEST(CheckDeathTest, LevelOffIgnoresCorruption) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug builds keep the assert in ComputeCell::idle() live";
#endif
  sim::Chip chip(checked_serial_config(CheckLevel::off));
  chip.step();
  chip.cell_state().fifo_msgs_ref(5) += 1;
  chip.step();
  chip.cell_state().fifo_msgs_ref(5) -= 1;
  SUCCEED();
}

}  // namespace
}  // namespace ccastream
